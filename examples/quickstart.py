#!/usr/bin/env python
"""Quickstart: reproduce the paper end to end, or walk the pipeline by hand.

The default mode drives the experiment CLI (``python -m repro run``): it
executes the cached, resumable stage DAG — dataset build, detector training
with epoch checkpoints, every table/figure evaluation — and writes the
generated Markdown report.  Re-running is nearly free (cache hits), and a
killed run resumes from the last training checkpoint.

    python examples/quickstart.py                  # orchestrated (smoke profile)
    python examples/quickstart.py --profile quick  # larger scale

``--manual`` keeps the original step-by-step walkthrough — useful to see the
library API without the orchestration layer:

1. generate a synthetic city (road network + latent road-preference field),
2. simulate confounded taxi trajectories and build the benchmark splits,
3. train CausalTAD (TG-VAE + RP-VAE) on the normal training trajectories,
4. score the in-distribution and out-of-distribution test combinations,
5. report ROC-AUC / PR-AUC and show a per-segment score breakdown.

    python examples/quickstart.py --manual [--scale small|tiny] [--seed 0]
"""

from __future__ import annotations

import argparse

from repro import (
    XIAN_LIKE,
    BenchmarkConfig,
    CausalTAD,
    CausalTADConfig,
    Trainer,
    TrainingConfig,
    build_benchmark_data,
)
from repro.eval import evaluate_scores
from repro.utils import RandomState


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--manual", action="store_true",
                        help="run the step-by-step library walkthrough instead of the CLI")
    parser.add_argument("--profile", choices=("smoke", "quick", "full"), default="smoke",
                        help="orchestrated mode: experiment scale preset")
    parser.add_argument("--scale", choices=("tiny", "small"), default=None,
                        help="manual mode: dataset / model size (tiny: seconds, small: minutes)")
    parser.add_argument("--seed", type=int, default=None,
                        help="random seed (orchestrated mode defaults to the profile seed)")
    args = parser.parse_args()
    if args.scale is not None and not args.manual:
        parser.error("--scale only applies to the --manual walkthrough; "
                     "use --profile to size the orchestrated run")
    return args


def run_orchestrated(args: argparse.Namespace) -> None:
    """The CLI path: one command reproduces every table and figure.

    The seed is forwarded only when the user supplies one, so this command
    shares the artifact cache with a plain ``python -m repro run``.
    """
    from repro.cli import main as repro_main

    argv = ["run", "--profile", args.profile]
    if args.seed is not None:
        argv += ["--seed", str(args.seed)]
    print(f"Running the experiment pipeline: python -m repro {' '.join(argv)}")
    print("(artifacts cached under ./artifacts — a second run is pure cache hits)\n")
    exit_code = repro_main(argv)
    if exit_code == 0:
        print("\nDone. Open docs/REPORT.md for the generated tables and figures.")
    raise SystemExit(exit_code)


def main() -> None:
    args = parse_args()
    if not args.manual:
        run_orchestrated(args)
    if args.scale is None:
        args.scale = "tiny"
    if args.seed is None:
        args.seed = 0
    rng = RandomState(args.seed)

    # ------------------------------------------------------------------ #
    # 1-2. City, confounded trajectories and benchmark splits.
    # ------------------------------------------------------------------ #
    bench_config = BenchmarkConfig.tiny() if args.scale == "tiny" else BenchmarkConfig.small()
    print(f"Generating the '{XIAN_LIKE.name}' synthetic city and its trajectories ...")
    data = build_benchmark_data(city_config=XIAN_LIKE, config=bench_config, rng=rng)
    summary = data.summary()
    print(f"  road segments : {summary['num_segments']}")
    print(f"  train          : {summary['train']} trajectories")
    print(f"  ID test        : {summary['id_test']}  (same SD pairs as training)")
    print(f"  OOD test       : {summary['ood_test']}  (unseen SD pairs)")

    # ------------------------------------------------------------------ #
    # 3. Train CausalTAD.
    # ------------------------------------------------------------------ #
    if args.scale == "tiny":
        model_config = CausalTADConfig.tiny(data.num_segments)
        training = TrainingConfig(epochs=8, batch_size=16, learning_rate=0.02, seed=args.seed)
    else:
        model_config = CausalTADConfig.small(data.num_segments)
        training = TrainingConfig.fast()
    model = CausalTAD(model_config, network=data.city.network, rng=rng)
    print(f"\nTraining CausalTAD ({model.num_parameters()} parameters, "
          f"{training.epochs} epochs) ...")
    history = Trainer(model, training, rng=rng).fit(data.train)
    print(f"  final training loss: {history.train_losses[-1]:.3f} "
          f"(started at {history.train_losses[0]:.3f})")

    # ------------------------------------------------------------------ #
    # 4. Score the four test combinations of the paper.
    # ------------------------------------------------------------------ #
    print("\nAnomaly detection quality (higher is better):")
    for name in ("id_detour", "id_switch", "ood_detour", "ood_switch"):
        dataset = getattr(data, name)
        metrics = evaluate_scores(model.score_dataset(dataset), dataset.labels)
        print(f"  {name:11s}  ROC-AUC {metrics['roc_auc']:.3f}   PR-AUC {metrics['pr_auc']:.3f}")

    # ------------------------------------------------------------------ #
    # 5. Per-segment breakdown of one OOD trajectory (the paper's Fig. 4).
    # ------------------------------------------------------------------ #
    trajectory = data.ood_test.trajectories[0]
    breakdown = model.segment_score_breakdown(trajectory)
    print(f"\nPer-segment scores for OOD trajectory '{trajectory.trajectory_id}':")
    print("  segment   -logP(t_i|...)   log E[1/P(t_i|e_i)]   debiased")
    for segment, likelihood, scaling, debiased in zip(
        breakdown.segments[:10],
        breakdown.likelihood_scores[:10],
        breakdown.scaling_scores[:10],
        breakdown.debiased_scores[:10],
    ):
        print(f"  {segment:7d}   {likelihood:13.3f}   {scaling:19.3f}   {debiased:8.3f}")
    if len(breakdown.segments) > 10:
        print(f"  ... ({len(breakdown.segments) - 10} more segments)")


if __name__ == "__main__":
    main()
