#!/usr/bin/env python
"""Quickstart: train CausalTAD on a synthetic city and detect detour anomalies.

This script walks through the whole pipeline in five short steps:

1. generate a synthetic city (road network + latent road-preference field),
2. simulate confounded taxi trajectories and build the benchmark splits,
3. train CausalTAD (TG-VAE + RP-VAE) on the normal training trajectories,
4. score the in-distribution and out-of-distribution test combinations,
5. report ROC-AUC / PR-AUC and show a per-segment score breakdown.

Run it with::

    python examples/quickstart.py [--scale small|tiny] [--seed 0]

The default ``tiny`` scale finishes in a few seconds on a laptop CPU; the
``small`` scale matches the benchmark harness and takes a couple of minutes.
"""

from __future__ import annotations

import argparse

from repro import (
    XIAN_LIKE,
    BenchmarkConfig,
    CausalTAD,
    CausalTADConfig,
    Trainer,
    TrainingConfig,
    build_benchmark_data,
)
from repro.eval import evaluate_scores
from repro.utils import RandomState


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("tiny", "small"), default="tiny",
                        help="dataset / model size (tiny: seconds, small: minutes)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    rng = RandomState(args.seed)

    # ------------------------------------------------------------------ #
    # 1-2. City, confounded trajectories and benchmark splits.
    # ------------------------------------------------------------------ #
    bench_config = BenchmarkConfig.tiny() if args.scale == "tiny" else BenchmarkConfig.small()
    print(f"Generating the '{XIAN_LIKE.name}' synthetic city and its trajectories ...")
    data = build_benchmark_data(city_config=XIAN_LIKE, config=bench_config, rng=rng)
    summary = data.summary()
    print(f"  road segments : {summary['num_segments']}")
    print(f"  train          : {summary['train']} trajectories")
    print(f"  ID test        : {summary['id_test']}  (same SD pairs as training)")
    print(f"  OOD test       : {summary['ood_test']}  (unseen SD pairs)")

    # ------------------------------------------------------------------ #
    # 3. Train CausalTAD.
    # ------------------------------------------------------------------ #
    if args.scale == "tiny":
        model_config = CausalTADConfig.tiny(data.num_segments)
        training = TrainingConfig(epochs=8, batch_size=16, learning_rate=0.02, seed=args.seed)
    else:
        model_config = CausalTADConfig.small(data.num_segments)
        training = TrainingConfig.fast()
    model = CausalTAD(model_config, network=data.city.network, rng=rng)
    print(f"\nTraining CausalTAD ({model.num_parameters()} parameters, "
          f"{training.epochs} epochs) ...")
    history = Trainer(model, training, rng=rng).fit(data.train)
    print(f"  final training loss: {history.train_losses[-1]:.3f} "
          f"(started at {history.train_losses[0]:.3f})")

    # ------------------------------------------------------------------ #
    # 4. Score the four test combinations of the paper.
    # ------------------------------------------------------------------ #
    print("\nAnomaly detection quality (higher is better):")
    for name in ("id_detour", "id_switch", "ood_detour", "ood_switch"):
        dataset = getattr(data, name)
        metrics = evaluate_scores(model.score_dataset(dataset), dataset.labels)
        print(f"  {name:11s}  ROC-AUC {metrics['roc_auc']:.3f}   PR-AUC {metrics['pr_auc']:.3f}")

    # ------------------------------------------------------------------ #
    # 5. Per-segment breakdown of one OOD trajectory (the paper's Fig. 4).
    # ------------------------------------------------------------------ #
    trajectory = data.ood_test.trajectories[0]
    breakdown = model.segment_score_breakdown(trajectory)
    print(f"\nPer-segment scores for OOD trajectory '{trajectory.trajectory_id}':")
    print("  segment   -logP(t_i|...)   log E[1/P(t_i|e_i)]   debiased")
    for segment, likelihood, scaling, debiased in zip(
        breakdown.segments[:10],
        breakdown.likelihood_scores[:10],
        breakdown.scaling_scores[:10],
        breakdown.debiased_scores[:10],
    ):
        print(f"  {segment:7d}   {likelihood:13.3f}   {scaling:19.3f}   {debiased:8.3f}")
    if len(breakdown.segments) > 10:
        print(f"  ... ({len(breakdown.segments) - 10} more segments)")


if __name__ == "__main__":
    main()
