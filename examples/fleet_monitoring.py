#!/usr/bin/env python
"""Fleet-scale monitoring: score a whole fleet of ongoing rides per tick.

Where ``examples/ride_hailing_monitoring.py`` walks one ride at a time through
a per-ride :class:`~repro.core.OnlineSession`, this example serves the same
O(1)-per-segment scores with the :class:`~repro.serving.FleetEngine`: every
tick, all pending segment observations across the fleet are executed as one
vectorized micro-batch (one batched embedding lookup + GRU step + masked
log-softmax), so hundreds of concurrent rides cost a handful of matrix ops.

The demo

1. trains CausalTAD on historical (normal) trajectories,
2. calibrates an alert threshold on the training rides,
3. replays a mixed fleet (normal + detour + route-switch rides) as a live
   event stream through the engine with capacity/TTL guard-rails,
4. prints the alerts as they fire, the top-k most anomalous rides still
   active mid-stream, and the engine's telemetry (throughput, tick latency).

Run with::

    python examples/fleet_monitoring.py [--rides 64] [--seed 1]
"""

from __future__ import annotations

import argparse

from repro import (
    XIAN_LIKE,
    BenchmarkConfig,
    CausalTAD,
    CausalTADConfig,
    FleetEngine,
    OnlineDetector,
    ThresholdAlertPolicy,
    Trainer,
    TrainingConfig,
    build_benchmark_data,
    calibrate_threshold,
    replay_trajectories,
)
from repro.utils import RandomState


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rides", type=int, default=64, help="fleet size to monitor")
    parser.add_argument("--seed", type=int, default=1, help="random seed")
    parser.add_argument("--threshold-percentile", type=float, default=97.5,
                        help="alert threshold as a percentile of normal-ride score rates")
    parser.add_argument("--top-k", type=int, default=5,
                        help="how many of the most anomalous active rides to show")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    rng = RandomState(args.seed)

    print("Preparing historical data and training CausalTAD ...")
    data = build_benchmark_data(city_config=XIAN_LIKE, config=BenchmarkConfig.demo(), rng=rng)
    model = CausalTAD(
        CausalTADConfig(
            num_segments=data.num_segments,
            embedding_dim=32,
            hidden_dim=32,
            latent_dim=16,
            lambda_weight=0.05,
            center_scaling=True,
        ),
        network=data.city.network,
        rng=rng,
    )
    Trainer(model, TrainingConfig(epochs=25, batch_size=32, learning_rate=0.01), rng=rng).fit(data.train)

    threshold = calibrate_threshold(
        OnlineDetector(model), data.train.trajectories, percentile=args.threshold_percentile
    )
    print(f"Alert threshold (score per segment): {threshold:.3f} "
          f"(P{args.threshold_percentile:.1f} of normal rides)\n")

    # ------------------------------------------------------------------ #
    # Build a mixed fleet: interleave normal and anomalous rides from both
    # anomaly generators so the stream resembles live traffic.
    # ------------------------------------------------------------------ #
    normals = [item for item in data.id_detour.items if item.label == 0]
    anomalies = [item for item in data.id_detour.items if item.label == 1]
    anomalies += [item for item in data.id_switch.items if item.label == 1]
    fleet_items = []
    for index in range(max(len(normals), len(anomalies))):
        if index < len(normals):
            fleet_items.append(normals[index])
        if index < len(anomalies):
            fleet_items.append(anomalies[index])
    if len(fleet_items) < args.rides:
        print(f"(only {len(fleet_items)} rides available; requested {args.rides})")
    fleet_items = fleet_items[: args.rides]
    labels = {item.trajectory.trajectory_id: item.label for item in fleet_items}
    rides = [item.trajectory for item in fleet_items]

    engine = FleetEngine(
        model,
        capacity=4 * args.rides,       # generous cap: nothing should evict
        ttl_ticks=50,
        alert_policy=ThresholdAlertPolicy(threshold),
    )

    print(f"Streaming {len(rides)} concurrent rides through the fleet engine:")
    shown_top_k = False
    for tick_events in replay_trajectories(rides):
        engine.ingest(tick_events)
        report = engine.tick()
        for alert in report.alerts:
            truth = "ANOMALY" if labels[alert.ride_id] == 1 else "normal "
            print(f"  tick {report.tick:3d}  ALERT ride {alert.ride_id:32s} [{truth}] "
                  f"rate {alert.per_segment_score:.3f} after {alert.observed_length} segments")
        if not shown_top_k and report.tick >= 5:
            shown_top_k = True
            print(f"\n  Top-{args.top_k} most anomalous active rides at tick {report.tick}:")
            for ride_id, rate in engine.top_k(args.top_k):
                truth = "ANOMALY" if labels[ride_id] == 1 else "normal "
                print(f"    {ride_id:32s} [{truth}] rate {rate:.3f}")
            print()

    # Drain anything still queued (e.g. deferred ride ends).
    while engine.active_rides:
        engine.tick()

    # ------------------------------------------------------------------ #
    # Accuracy + operations summary.
    # ------------------------------------------------------------------ #
    alerted = {alert.ride_id for alert in engine.alerts}
    caught = sum(1 for ride_id, label in labels.items() if label == 1 and ride_id in alerted)
    total_anomalies = sum(labels.values())
    false_alarms = sum(1 for ride_id in alerted if labels[ride_id] == 0)
    total_normals = len(labels) - total_anomalies

    print("Summary:")
    if total_anomalies:
        print(f"  anomalies caught : {caught}/{total_anomalies}")
    if total_normals:
        print(f"  false alarms     : {false_alarms}/{total_normals}")
    print(f"  telemetry        : {engine.telemetry.format_summary()}")


if __name__ == "__main__":
    main()
