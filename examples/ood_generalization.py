#!/usr/bin/env python
"""Out-of-distribution generalisation: why debiasing matters.

This example reproduces the paper's central argument at example scale:

* The SD-pair distribution of the training data is *confounded* by road
  preference — popular destinations sit on popular roads.
* A conventional trajectory VAE (VSAE) learns that correlation and therefore
  over-penalises normal rides toward unpopular destinations.
* CausalTAD's scaling factor (the ``P(T|do(C))`` adjustment) compensates, so
  its advantage over the baseline is largest on trajectories with unseen SD
  pairs.

The script trains both detectors on the same data, evaluates them on the ID
and OOD detour test sets, and prints the per-segment breakdown of the OOD
normal trajectory the baseline gets most wrong (the paper's Fig. 4 scenario).

Run with::

    python examples/ood_generalization.py [--seed 2]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import XIAN_LIKE, BenchmarkConfig, build_benchmark_data
from repro.baselines import CausalTADDetector, DetectorConfig, VSAEDetector
from repro.core import TrainingConfig
from repro.eval import evaluate_scores, score_breakdown
from repro.utils import RandomState


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7,
                        help="random seed (7 matches the benchmark harness / EXPERIMENTS.md)")
    parser.add_argument("--epochs", type=int, default=25, help="training epochs for both models")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    rng = RandomState(args.seed)

    print("Building the confounded benchmark (training SD pairs are popular ones) ...")
    data = build_benchmark_data(city_config=XIAN_LIKE, config=BenchmarkConfig.small(), rng=rng)

    # How confounded is the data?  Compare the ground-truth attractiveness of
    # destinations in the training set vs the OOD test set.
    attraction = data.city.preference.destination_weights
    train_attr = np.mean([attraction[t.destination] for t in data.train.trajectories])
    ood_attr = np.mean([attraction[t.destination] for t in data.ood_test.trajectories])
    print(f"  mean destination popularity   train: {train_attr:.3f}   OOD: {ood_attr:.3f}")
    print("  (training destinations are systematically more popular -> E -> C bias)\n")

    config = DetectorConfig(
        num_segments=data.num_segments,
        embedding_dim=48,
        hidden_dim=48,
        latent_dim=24,
        training=TrainingConfig(epochs=args.epochs, batch_size=32, learning_rate=0.01),
    )
    # CausalTAD with the configuration the paper recommends deriving by grid
    # search on a validation set: a small lambda, here with centred scaling
    # factors (see DESIGN.md) so the correction is purely popular-vs-unpopular.
    from repro.core import CausalTADConfig

    causal_model_config = CausalTADConfig(
        num_segments=data.num_segments,
        embedding_dim=48,
        hidden_dim=48,
        latent_dim=24,
        lambda_weight=0.05,
        center_scaling=True,
    )
    causal = CausalTADDetector(config, model_config=causal_model_config, rng=RandomState(args.seed + 10))
    baseline = VSAEDetector(config, rng=RandomState(args.seed + 20))

    print("Training CausalTAD and the VSAE baseline on identical data ...")
    causal.fit(data.train, network=data.city.network)
    baseline.fit(data.train, network=data.city.network)

    print("\nROC-AUC / PR-AUC on the detour test combinations:")
    header = f"  {'dataset':12s} {'VSAE':>16s} {'CausalTAD':>18s}"
    print(header)
    for name in ("id_detour", "ood_detour"):
        dataset = getattr(data, name)
        base_metrics = evaluate_scores(baseline.score(dataset), dataset.labels)
        causal_metrics = evaluate_scores(causal.score(dataset), dataset.labels)
        print(
            f"  {name:12s} "
            f"{base_metrics['roc_auc']:7.3f}/{base_metrics['pr_auc']:.3f} "
            f"  {causal_metrics['roc_auc']:7.3f}/{causal_metrics['pr_auc']:.3f}"
        )
    print("  (the CausalTAD advantage typically concentrates on the OOD rows; "
          "see EXPERIMENTS.md for the benchmark-scale numbers)\n")

    # ------------------------------------------------------------------ #
    # Fig. 4 style breakdown: the OOD normal ride the baseline dislikes most.
    # ------------------------------------------------------------------ #
    comparison = score_breakdown(data, causal, baseline)
    print(f"Worst-scored OOD normal trajectory according to {comparison.baseline_name}: "
          f"{comparison.trajectory_id}")
    print(f"  {comparison.baseline_name} total score : {comparison.baseline_total:.2f}")
    print(f"  CausalTAD total score                   : {comparison.causal_total:.2f}")
    print("  per-segment debiasing (positive scaling = unpopular segment rescued):")
    order = np.argsort(-comparison.scaling_scores)[:8]
    for index in order:
        print(
            f"    segment {comparison.segments[index]:4d}   "
            f"scaling {comparison.scaling_scores[index]:6.3f}   "
            f"debiased score {comparison.causal_scores[index]:6.3f}"
        )


if __name__ == "__main__":
    main()
