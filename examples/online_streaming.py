#!/usr/bin/env python
"""Streaming evaluation: detection quality and latency versus observed ratio.

Reproduces, at example scale, the paper's online experiments (Fig. 6 and
Fig. 7(b)): how does detection quality grow as more of each trajectory is
observed, and how expensive is each incremental update?

The script

1. trains CausalTAD and a Seq2Seq baseline,
2. evaluates both at observed ratios 0.2 … 1.0 on the ID & Switch combination,
3. times CausalTAD's O(1) per-segment online updates against re-scoring the
   whole prefix from scratch (what an encoder-based baseline has to do).

Run with::

    python examples/online_streaming.py [--seed 3]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import XIAN_LIKE, BenchmarkConfig, build_benchmark_data
from repro.baselines import CausalTADDetector, DetectorConfig, VSAEDetector
from repro.core import OnlineDetector, TrainingConfig
from repro.eval import evaluate_scores, run_online_sweep
from repro.utils import RandomState


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7, help="random seed")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    rng = RandomState(args.seed)

    print("Preparing data and detectors ...")
    data = build_benchmark_data(city_config=XIAN_LIKE, config=BenchmarkConfig.small(), rng=rng)
    config = DetectorConfig(
        num_segments=data.num_segments,
        embedding_dim=48,
        hidden_dim=48,
        latent_dim=24,
        training=TrainingConfig(epochs=25, batch_size=32, learning_rate=0.01),
    )
    from repro.core import CausalTADConfig

    causal = CausalTADDetector(
        config,
        model_config=CausalTADConfig(
            num_segments=data.num_segments,
            embedding_dim=48,
            hidden_dim=48,
            latent_dim=24,
            lambda_weight=0.05,
            center_scaling=True,
        ),
        rng=RandomState(args.seed + 1),
    )
    baseline = VSAEDetector(config, rng=RandomState(args.seed + 2))
    causal.fit(data.train, network=data.city.network)
    baseline.fit(data.train, network=data.city.network)

    # ------------------------------------------------------------------ #
    # Fig. 6: quality vs observed ratio.
    # ------------------------------------------------------------------ #
    ratios = (0.2, 0.4, 0.6, 0.8, 1.0)
    sweep = run_online_sweep(data, [causal, baseline], observed_ratios=ratios,
                             distribution="id", anomaly="switch")
    print("\nROC-AUC versus observed ratio (ID & Switch):")
    print("  ratio     " + "  ".join(f"{r:>6.1f}" for r in ratios))
    for name in ("VSAE", "CausalTAD"):
        curve = sweep.curve(name)
        print(f"  {name:9s} " + "  ".join(f"{value:6.3f}" for value in curve))

    # ------------------------------------------------------------------ #
    # Fig. 7(b) flavour: incremental O(1) updates vs re-scoring prefixes.
    # ------------------------------------------------------------------ #
    online = OnlineDetector(causal.model)
    trajectories = data.id_test.trajectories[:30]

    start = time.perf_counter()
    total_updates = 0
    for trajectory in trajectories:
        session = online.start_session(trajectory.sd_pair, trajectory.segments[0])
        for segment in trajectory.segments[1:]:
            session.update(segment)
            total_updates += 1
    incremental = (time.perf_counter() - start) / total_updates

    start = time.perf_counter()
    total_rescores = 0
    for trajectory in trajectories:
        for length in range(2, len(trajectory) + 1):
            causal.model.score_trajectory(trajectory.prefix(length))
            total_rescores += 1
    from_scratch = (time.perf_counter() - start) / total_rescores

    print("\nPer-new-segment scoring cost:")
    print(f"  CausalTAD incremental update : {incremental * 1e3:7.3f} ms")
    print(f"  re-scoring the whole prefix  : {from_scratch * 1e3:7.3f} ms")
    print(f"  speed-up                     : {from_scratch / incremental:6.1f}x")


if __name__ == "__main__":
    main()
