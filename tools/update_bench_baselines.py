#!/usr/bin/env python
"""Fold benchmark timing artifacts into the committed BENCH_*.json baselines.

The benchmarks (run with ``REPRO_BENCH_ARTIFACTS=<dir>``) each drop a timing
JSON into ``<dir>``.  This tool folds the *gated ratio metrics* of those
artifacts — speedups, which divide out machine speed — into one committed
baseline file per benchmark area at the repository root:

========================  =====================================================
``BENCH_train.json``      ``bench_train_fused`` (tg_speedup, full_speedup)
``BENCH_roadnet.json``    ``bench_roadnet_queries`` / ``_dataset_build`` /
                          ``_dijkstra`` (each contributes ``<part>.speedup``)
``BENCH_scoring.json``    ``bench_score_throughput`` (score_speedup,
                          sweep_speedup)
``BENCH_fleet.json``      ``bench_fleet_throughput`` (speedup)
========================  =====================================================

Together the committed files are the repo's perf trajectory:
``benchmarks/support.baseline_floor`` ratchets each bench gate up to
``baseline * (1 - tolerance)`` (never below the fixed floor), and CI's
``--check`` mode fails the build when a fresh run regresses beyond the same
tolerance.

Usage::

    # refresh the committed baselines from a fresh artifact directory
    python tools/update_bench_baselines.py --artifacts bench-artifacts

    # CI drift gate: compare fresh artifacts against the committed baselines
    python tools/update_bench_baselines.py --check --artifacts bench-artifacts

Absolute timings (seconds) in the artifacts are machine-bound and are
deliberately *not* folded into the baselines.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: area -> {artifact name -> {artifact metric -> baseline metric}}.  Multi-
#: artifact areas prefix the baseline metric with the artifact's short part
#: name so one file carries the whole area.
AREAS: Dict[str, Dict[str, Dict[str, str]]] = {
    "train": {
        "bench_train_fused": {
            "tg_speedup": "tg_speedup",
            "full_speedup": "full_speedup",
        },
    },
    "roadnet": {
        "bench_roadnet_queries": {"speedup": "queries.speedup"},
        "bench_roadnet_dataset_build": {"speedup": "dataset_build.speedup"},
        "bench_roadnet_dijkstra": {"speedup": "dijkstra.speedup"},
    },
    "scoring": {
        "bench_score_throughput": {
            "score_speedup": "score_speedup",
            "sweep_speedup": "sweep_speedup",
        },
    },
    "fleet": {
        "bench_fleet_throughput": {"speedup": "speedup"},
    },
}

DEFAULT_TOLERANCE = float(os.environ.get("REPRO_BENCH_BASELINE_TOLERANCE", "0.25"))


def _load_json(path: str) -> Optional[dict]:
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _baseline_path(area: str, root: str) -> str:
    return os.path.join(root, f"BENCH_{area}.json")


def collect_area_metrics(area: str, artifacts_dir: str) -> Dict[str, float]:
    """Gated metrics measured by the artifacts present for ``area``."""
    measured: Dict[str, float] = {}
    for artifact, mapping in AREAS[area].items():
        payload = _load_json(os.path.join(artifacts_dir, f"{artifact}.json"))
        if payload is None:
            continue
        for source, target in mapping.items():
            if source in payload:
                measured[target] = float(payload[source])
    return measured


def update(artifacts_dir: str, root: str, log=print) -> int:
    """Fold fresh artifact metrics into the committed baselines."""
    wrote = 0
    for area in AREAS:
        measured = collect_area_metrics(area, artifacts_dir)
        if not measured:
            log(f"[{area}] no artifacts in {artifacts_dir}; baseline unchanged")
            continue
        path = _baseline_path(area, root)
        existing = _load_json(path) or {}
        metrics = dict(existing.get("metrics", {}))
        metrics.update(measured)
        scale = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
        baseline = {
            "area": area,
            "scale": scale,
            "metrics": {name: round(value, 4) for name, value in sorted(metrics.items())},
            "sources": sorted(AREAS[area]),
            "note": "speedup ratios only (machine speed divides out); "
            "refreshed by tools/update_bench_baselines.py",
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        log(f"[{area}] wrote {os.path.relpath(path, root)}: "
            + ", ".join(f"{k}={v:.2f}x" for k, v in sorted(measured.items())))
        wrote += 1
    if wrote == 0:
        log(f"error: no benchmark artifacts found under {artifacts_dir}")
        return 1
    return 0


def check(artifacts_dir: str, root: str, tolerance: float, log=print) -> int:
    """Fail (exit 1) when a fresh run regresses beyond ``tolerance``."""
    regressions = []
    compared = 0
    for area in AREAS:
        baseline = _load_json(_baseline_path(area, root))
        if baseline is None:
            log(f"[{area}] no committed BENCH_{area}.json; skipping")
            continue
        recorded = baseline.get("metrics", {})
        measured = collect_area_metrics(area, artifacts_dir)
        for metric, value in sorted(measured.items()):
            reference = recorded.get(metric)
            if reference is None:
                log(f"[{area}] {metric}: {value:.2f}x (no recorded baseline)")
                continue
            compared += 1
            floor = float(reference) * (1.0 - tolerance)
            status = "OK" if value >= floor else "REGRESSED"
            log(
                f"[{area}] {metric}: measured {value:.2f}x vs baseline "
                f"{float(reference):.2f}x (floor {floor:.2f}x) {status}"
            )
            if value < floor:
                regressions.append(f"{area}/{metric}")
    if compared == 0:
        log("error: nothing to compare (no artifacts or no baselines)")
        return 1
    if regressions:
        log(f"FAIL: {len(regressions)} metric(s) regressed beyond "
            f"{tolerance:.0%} tolerance: {', '.join(regressions)}")
        return 1
    log(f"all {compared} gated metrics within {tolerance:.0%} of the committed baselines")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts",
        default="bench-artifacts",
        help="directory of bench_*.json timing artifacts (default: bench-artifacts)",
    )
    parser.add_argument(
        "--root",
        default=REPO_ROOT,
        help="repository root holding the BENCH_*.json baselines",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baselines instead of rewriting them",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed relative regression in --check mode "
        f"(default: {DEFAULT_TOLERANCE}, or $REPRO_BENCH_BASELINE_TOLERANCE)",
    )
    args = parser.parse_args(argv)
    if args.check:
        return check(args.artifacts, args.root, args.tolerance)
    return update(args.artifacts, args.root)


if __name__ == "__main__":
    sys.exit(main())
