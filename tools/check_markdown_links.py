#!/usr/bin/env python
"""Check intra-repo Markdown links (files and heading anchors).

Scans every tracked ``*.md`` file at the repo root and under ``docs/`` for
inline links ``[text](target)`` and verifies that

* relative file targets exist (resolved against the linking file), and
* ``#anchor`` fragments pointing into a Markdown file match one of its
  headings (GitHub slug rules: lowercase, punctuation stripped, spaces to
  hyphens).

External links (``http(s)://``, ``mailto:``) are ignored — CI must not
depend on the network.  Exit code 1 and a per-link report on failure; used
by the CI ``docs`` job.

Usage::

    python tools/check_markdown_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Optional, Tuple

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    text = heading.strip()
    text = re.sub(r"`([^`]*)`", r"\1", text)           # drop code formatting
    text = re.sub(r"\*", "", text)                      # drop emphasis markers
    # (underscores survive in GitHub slugs, so they are kept)
    text = text.lower()
    text = re.sub(r"[^\w\s-]", "", text)                # strip punctuation
    return re.sub(r"\s+", "-", text).strip("-")


def heading_slugs(markdown: str) -> List[str]:
    slugs: List[str] = []
    without_fences = CODE_FENCE_RE.sub("", markdown)
    for match in HEADING_RE.finditer(without_fences):
        slug = github_slug(match.group(1))
        # GitHub de-duplicates repeated headings with -1, -2, ... suffixes.
        if slug in slugs:
            suffix = 1
            while f"{slug}-{suffix}" in slugs:
                suffix += 1
            slug = f"{slug}-{suffix}"
        slugs.append(slug)
    return slugs


def iter_markdown_files(root: Path) -> List[Path]:
    files = sorted(root.glob("*.md")) + sorted((root / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def check_file(path: Path, root: Path) -> List[str]:
    errors: List[str] = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(CODE_FENCE_RE.sub("", text)):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(root)}: broken link -> {target}")
                continue
        else:
            resolved = path.resolve()
        if anchor and resolved.suffix == ".md":
            slugs = heading_slugs(resolved.read_text(encoding="utf-8"))
            if anchor not in slugs:
                errors.append(
                    f"{path.relative_to(root)}: missing anchor -> {target}"
                )
    return errors


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]).resolve() if argv else Path(__file__).resolve().parent.parent
    files = iter_markdown_files(root)
    errors: List[str] = []
    for path in files:
        errors.extend(check_file(path, root))
    if errors:
        print(f"{len(errors)} broken Markdown link(s):")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"checked {len(files)} Markdown files — all intra-repo links OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
